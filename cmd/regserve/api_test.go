package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/nettransport"
	"churnreg/internal/nodeops"
	"churnreg/internal/shard"
)

// fakeBackend implements the api's backend interface in memory: writes
// assign the key's next sequence number under a lock, reads return the
// stored copy. A hold channel, when set, blocks writes until released —
// the hook the concurrency tests use to observe in-flight state.
type fakeBackend struct {
	mu   sync.Mutex
	vals map[core.RegisterID]core.VersionedValue
	hold chan struct{}
	// sharded, when set, makes ShardInfo report a sharded placement (the
	// /metrics and /health shard-gauge tests use it).
	sharded bool
	// stats is what Stats() serves; tests may pre-load counters.
	stats nettransport.Stats
	// readErr / writeErr, when set, fail the respective operations — the
	// hook the error-status tests use.
	readErr, writeErr error
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{vals: make(map[core.RegisterID]core.VersionedValue)}
}

func (f *fakeBackend) ReadKey(reg core.RegisterID, _ time.Duration) (core.VersionedValue, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.readErr != nil {
		return core.VersionedValue{}, f.readErr
	}
	return f.vals[reg], nil
}

func (f *fakeBackend) WriteKey(reg core.RegisterID, v core.Value, _ time.Duration) (core.VersionedValue, error) {
	if f.writeErr != nil {
		return core.VersionedValue{}, f.writeErr
	}
	if f.hold != nil {
		<-f.hold
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	next := core.VersionedValue{Val: v, SN: f.vals[reg].SN + 1}
	f.vals[reg] = next
	return next, nil
}

func (f *fakeBackend) WriteBatch(entries []core.KeyedWrite, d time.Duration) ([]core.KeyedValue, error) {
	out := make([]core.KeyedValue, len(entries))
	for i, e := range entries {
		vv, err := f.WriteKey(e.Reg, e.Val, d)
		if err != nil {
			return nil, err
		}
		out[i] = core.KeyedValue{Reg: e.Reg, Value: vv}
	}
	return out, nil
}

// ReadKeyServed attributes every fake read to process 9 — distinct from
// the api's own id, so the served_by plumbing is observable.
func (f *fakeBackend) ReadKeyServed(reg core.RegisterID, d time.Duration) (core.VersionedValue, core.ProcessID, error) {
	v, err := f.ReadKey(reg, d)
	return v, 9, err
}

// Invoke runs fn synchronously against a stub node (the real transport
// schedules it on the loop goroutine; the api cannot tell the difference).
func (f *fakeBackend) Invoke(fn func(core.Node)) error {
	fn(stubNode{})
	return nil
}
func (f *fakeBackend) Active() bool   { return true }
func (f *fakeBackend) PeerCount() int { return 2 }
func (f *fakeBackend) Addr() string   { return "fake:0" }

// Stats hands the api a live (zero-valued) counter block, as the real
// transport would.
func (f *fakeBackend) Stats() *nettransport.Stats { return &f.stats }

// stubNode is the minimal core.Node the fake's Invoke serves, with a
// fixed read-path split so the /metrics fast/slow series is observable.
type stubNode struct{}

func (stubNode) Start()                                      {}
func (stubNode) Active() bool                                { return true }
func (stubNode) Deliver(from core.ProcessID, m core.Message) {}
func (stubNode) Snapshot() core.VersionedValue               { return core.VersionedValue{} }
func (stubNode) ReadPathCounts() (uint64, uint64)            { return 5, 2 }

// Stats satisfies the api's forwardCounter slice with fixed relay
// counts, so the regserve_forward_* series is observable.
func (stubNode) Stats() shard.Stats {
	return shard.Stats{ForwardedReads: 4, ForwardedWrites: 1, ForwardsServed: 7, ForwardsRefused: 2}
}

func (f *fakeBackend) ShardInfo() (int, int, int) {
	if f.sharded {
		return 16, 6, 3
	}
	return 0, 0, 0
}

func newTestAPI(t *testing.T, b backend) *httptest.Server {
	t.Helper()
	cfg := &serverConfig{id: 1, protocol: "sync", opTimeout: time.Second}
	srv := httptest.NewServer(newAPI(cfg, b, make(chan struct{}, 1)))
	t.Cleanup(srv.Close)
	return srv
}

func call(t *testing.T, method, url string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func get(t *testing.T, url string) (int, string)  { return call(t, "GET", url) }
func post(t *testing.T, url string) (int, string) { return call(t, "POST", url) }

// TestAPIWriteReportsExactSN pins the pipelining contract on the wire:
// the sn in a write response is the one THIS write stored, not a
// snapshot that a concurrent write could have advanced.
func TestAPIWriteReportsExactSN(t *testing.T) {
	b := newFakeBackend()
	srv := newTestAPI(t, b)
	for want := int64(1); want <= 3; want++ {
		status, body := post(t, srv.URL+"/write?key=5&val=42")
		if status != 200 {
			t.Fatalf("write status %d: %s", status, body)
		}
		var res struct {
			SN int64 `json:"sn"`
		}
		if err := json.Unmarshal([]byte(body), &res); err != nil {
			t.Fatal(err)
		}
		if res.SN != want {
			t.Fatalf("write #%d reported sn %d", want, res.SN)
		}
	}
	status, body := post(t, srv.URL+"/writebatch?b=1=10,2=20")
	if status != 200 {
		t.Fatalf("writebatch status %d: %s", status, body)
	}
	var res struct {
		SNs map[string]int64 `json:"sns"`
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.SNs["1"] != 1 || res.SNs["2"] != 1 {
		t.Fatalf("batch sns = %v, want both 1", res.SNs)
	}
}

// TestAPIMetricsEndpoint drives traffic through the handlers and checks
// the /metrics exposition: latency histograms count completed operations,
// and the in-flight gauge is live while a write is blocked mid-handler.
func TestAPIMetricsEndpoint(t *testing.T) {
	b := newFakeBackend()
	srv := newTestAPI(t, b)

	for i := 0; i < 3; i++ {
		if status, body := get(t, srv.URL+"/read?key=7"); status != 200 {
			t.Fatalf("read status %d: %s", status, body)
		}
	}
	if status, body := post(t, srv.URL+"/write?key=7&val=1"); status != 200 {
		t.Fatalf("write status %d: %s", status, body)
	}

	status, body := get(t, srv.URL+"/metrics")
	if status != 200 {
		t.Fatalf("metrics status %d", status)
	}
	for _, line := range []string{
		`regserve_op_seconds_count{op="read"} 3`,
		`regserve_op_seconds_count{op="write"} 1`,
		`regserve_op_seconds_bucket{op="read",le="+Inf"} 3`,
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("metrics output missing %q:\n%s", line, body)
		}
	}

	// Gauge: block a write inside the backend and watch it appear.
	b.hold = make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		status, _ := post(t, srv.URL+"/write?key=9&val=2")
		if status != 200 {
			errc <- io.ErrUnexpectedEOF
			return
		}
		errc <- nil
	}()
	deadline := time.After(5 * time.Second)
	for {
		_, body := get(t, srv.URL+"/metrics")
		if strings.Contains(body, `regserve_op_inflight{op="write",key="9"} 1`) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("in-flight gauge never appeared:\n%s", body)
		case <-time.After(10 * time.Millisecond):
		}
	}
	close(b.hold)
	if err := <-errc; err != nil {
		t.Fatal("blocked write failed")
	}
	// Drained: the gauge series disappears (bounded exposition).
	_, body = get(t, srv.URL+"/metrics")
	if strings.Contains(body, `regserve_op_inflight{op="write",key="9"}`) {
		t.Fatalf("in-flight gauge not reclaimed:\n%s", body)
	}
}

// TestAPIShardGauges: a sharded backend's placement appears on /metrics
// (the three shard gauges) and on /health; an unsharded one exposes
// neither.
func TestAPIShardGauges(t *testing.T) {
	b := newFakeBackend()
	b.sharded = true
	srv := newTestAPI(t, b)
	status, body := get(t, srv.URL+"/metrics")
	if status != 200 {
		t.Fatalf("metrics status %d", status)
	}
	for _, line := range []string{
		"regserve_shards_total 16",
		"regserve_shards_owned 6",
		"regserve_shard_replication 3",
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("metrics output missing %q:\n%s", line, body)
		}
	}
	if status, body := get(t, srv.URL+"/health"); status != 200 || !strings.Contains(body, `"shards":16`) {
		t.Fatalf("health status %d missing shards: %s", status, body)
	}

	plain := newTestAPI(t, newFakeBackend())
	if _, body := get(t, plain.URL+"/metrics"); strings.Contains(body, "regserve_shards_total") {
		t.Fatalf("unsharded node exposes shard gauges:\n%s", body)
	}
}

// TestAPIReadReportsServer: the read response carries served_by — the
// replica whose copy produced the value (the fake attributes to 9).
func TestAPIReadReportsServer(t *testing.T) {
	srv := newTestAPI(t, newFakeBackend())
	status, body := get(t, srv.URL+"/read?key=3")
	if status != 200 {
		t.Fatalf("read status %d: %s", status, body)
	}
	var out struct {
		ServedBy int64 `json:"served_by"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.ServedBy != 9 {
		t.Fatalf("served_by = %d, want 9", out.ServedBy)
	}
}

// TestAPITransportAndReadPathMetrics: the wire-level hot-path series
// (coalescing factor, batch gauge, backpressure counters) and the quorum
// read fast/slow split render on /metrics with the values the backend
// reports.
func TestAPITransportAndReadPathMetrics(t *testing.T) {
	b := newFakeBackend()
	b.stats.FlushWrites.Store(10)
	b.stats.FlushedFrames.Store(80)
	b.stats.LastBatchFrames.Store(16)
	b.stats.MailboxStalls.Store(3)
	b.stats.QueueDrops.Store(2)
	srv := newTestAPI(t, b)
	status, body := get(t, srv.URL+"/metrics")
	if status != 200 {
		t.Fatalf("metrics status %d", status)
	}
	for _, line := range []string{
		"regserve_transport_frames_per_write 8",
		"regserve_transport_last_batch_frames 16",
		"regserve_transport_flushed_frames_total 80",
		"regserve_transport_mailbox_stalls_total 3",
		"regserve_transport_queue_drops_total 2",
		`regserve_read_path_total{path="fast"} 5`,
		`regserve_read_path_total{path="slow"} 2`,
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("metrics output missing %q:\n%s", line, body)
		}
	}
}

// TestAPIErrorStatuses pins the error-to-status map the wire client's
// HTTP-facing cousins depend on — above all that the two routing
// failures stay DISTINCT: 503 says "not applied, retry freely", 502 says
// "fate unknown, do NOT blindly retry". Collapsing them would turn every
// ambiguous write into a client retry and break the per-key write
// discipline.
func TestAPIErrorStatuses(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		op     string
		status int
	}{
		{"unroutable read", core.ErrUnroutable, "read", http.StatusServiceUnavailable},
		{"unroutable write", core.ErrUnroutable, "write", http.StatusServiceUnavailable},
		{"unacknowledged write", core.ErrUnacknowledged, "write", http.StatusBadGateway},
		{"not active", core.ErrNotActive, "read", http.StatusServiceUnavailable},
		{"op in progress", core.ErrOpInProgress, "write", http.StatusConflict},
		{"timeout", nodeops.ErrTimeout, "read", http.StatusGatewayTimeout},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := newFakeBackend()
			var status int
			var body string
			if tc.op == "read" {
				b.readErr = tc.err
				srv := newTestAPI(t, b)
				status, body = get(t, srv.URL+"/read?key=1")
			} else {
				b.writeErr = tc.err
				srv := newTestAPI(t, b)
				status, body = post(t, srv.URL+"/write?key=1&val=2")
			}
			if status != tc.status {
				t.Fatalf("%s %v: status %d, want %d (%s)", tc.op, tc.err, status, tc.status, body)
			}
			// The body names the error — operators and clients see which
			// failure this was, not just the class.
			var out struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal([]byte(body), &out); err != nil || out.Error == "" {
				t.Fatalf("%s %v: body %q does not carry the error", tc.op, tc.err, body)
			}
		})
	}
}

// TestAPIForwardMetrics: the relay-hop counters from the shard wrapper
// render on /metrics — the series the direct-routing benchmark scrapes
// to prove the smart client eliminated the FORWARD hop.
func TestAPIForwardMetrics(t *testing.T) {
	srv := newTestAPI(t, newFakeBackend())
	status, body := get(t, srv.URL+"/metrics")
	if status != 200 {
		t.Fatalf("metrics status %d", status)
	}
	for _, line := range []string{
		`regserve_forward_total{op="read"} 4`,
		`regserve_forward_total{op="write"} 1`,
		"regserve_forward_served_total 7",
		"regserve_forward_refused_total 2",
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("metrics output missing %q:\n%s", line, body)
		}
	}
}

// TestAPIPprofGating: /debug/pprof serves only when -pprof was given.
func TestAPIPprofGating(t *testing.T) {
	cfg := &serverConfig{id: 1, protocol: "sync", opTimeout: time.Second, pprof: true}
	on := httptest.NewServer(newAPI(cfg, newFakeBackend(), make(chan struct{}, 1)))
	t.Cleanup(on.Close)
	if status, body := get(t, on.URL+"/debug/pprof/cmdline"); status != 200 {
		t.Fatalf("pprof-enabled node: /debug/pprof/cmdline status %d: %s", status, body)
	}
	off := newTestAPI(t, newFakeBackend()) // pprof unset
	if status, _ := get(t, off.URL+"/debug/pprof/cmdline"); status == 200 {
		t.Fatal("pprof served without -pprof")
	}
}
