package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E5", "E10", "E12"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "E1", "-seed", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E1 — Figure 3") || !strings.Contains(out, "VIOLATION") {
		t.Fatalf("E1 output unexpected:\n%s", out)
	}
}

func TestRunSingleExperimentMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "E2", "-markdown"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "|---|") {
		t.Fatalf("markdown output lacks a table rule:\n%s", buf.String())
	}
}

func TestUnknownExperimentErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "E99"}, &buf); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestBadFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	fsOut := &buf
	if err := run([]string{"-definitely-not-a-flag"}, fsOut); err == nil {
		t.Fatal("bad flag accepted")
	}
}
