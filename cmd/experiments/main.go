// Command experiments regenerates every table in EXPERIMENTS.md: one
// experiment per figure, lemma, or theorem of the paper (see DESIGN.md §5
// for the index). Runs are deterministic in the seed.
//
// Usage:
//
//	experiments [-seed N] [-only E4]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"churnreg/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "deterministic seed for every experiment")
	only := fs.String("only", "", "run a single experiment by id (e.g. E4)")
	list := fs.Bool("list", false, "list experiments and exit")
	markdown := fs.Bool("markdown", false, "render tables as GitHub markdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	exps := harness.All()
	if *list {
		for _, e := range exps {
			fmt.Fprintf(w, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	ran := 0
	for _, e := range exps {
		if *only != "" && e.ID != *only {
			continue
		}
		fmt.Fprintf(w, "## %s — %s (seed %d)\n\n", e.ID, e.Title, *seed)
		for _, tb := range e.Run(*seed) {
			if *markdown {
				fmt.Fprintln(w, tb.RenderMarkdown())
			} else {
				fmt.Fprintln(w, tb.Render())
			}
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches -only=%q (try -list)", *only)
	}
	return nil
}
