// Command churnscan sweeps the churn rate for one protocol and emits CSV
// (one row per churn value, several seeds aggregated) for plotting the
// degradation curves around the paper's bounds.
//
// Usage:
//
//	churnscan -protocol sync -n 30 -delta 5 -steps 12 -max-mult 4 > sync.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"churnreg/internal/abd"
	"churnreg/internal/core"
	"churnreg/internal/esyncreg"
	"churnreg/internal/harness"
	"churnreg/internal/sim"
	"churnreg/internal/syncreg"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "churnscan:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("churnscan", flag.ContinueOnError)
	var (
		protocol = fs.String("protocol", "sync", "protocol: sync, esync, or abd")
		n        = fs.Int("n", 30, "constant system size")
		delta    = fs.Int64("delta", 5, "communication bound δ (ticks)")
		duration = fs.Int64("duration", 2000, "ticks per run")
		steps    = fs.Int("steps", 10, "number of churn values")
		maxMult  = fs.Float64("max-mult", 2.0, "sweep up to this multiple of the protocol's churn bound")
		seeds    = fs.Int("seeds", 3, "seeds per churn value")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var factory core.NodeFactory
	var bound float64
	switch *protocol {
	case "sync":
		factory = syncreg.Factory(syncreg.Options{})
		bound = harness.SyncChurnBound(sim.Duration(*delta))
	case "esync":
		factory = esyncreg.Factory(esyncreg.Options{})
		bound = harness.ESyncChurnBound(sim.Duration(*delta), *n)
	case "abd":
		factory = abd.Factory()
		bound = harness.SyncChurnBound(sim.Duration(*delta)) // for scale
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}

	fmt.Fprintln(w, "protocol,c,c_over_bound,seed,joins_completed,joins_pending,reads_completed,writes_completed,violations,inversions,min_active,join_p50,join_p99")
	for i := 0; i <= *steps; i++ {
		c := bound * *maxMult * float64(i) / float64(*steps)
		if c >= 1 {
			break
		}
		for seed := 1; seed <= *seeds; seed++ {
			res, err := harness.Run(harness.Trial{
				N: *n, Delta: sim.Duration(*delta), Churn: c,
				MinLifetime: 3 * sim.Duration(*delta),
				Factory:     factory,
				Duration:    sim.Duration(*duration),
				Seed:        uint64(seed),
				Workload:    harness.WorkloadMix(4*sim.Duration(*delta), sim.Duration(*delta), 2, true),
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s,%.6f,%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%.0f,%.0f\n",
				*protocol, c, safeDiv(c, bound), seed,
				res.JoinCompleted, res.JoinPending,
				res.Counts.ReadsCompleted, res.Counts.WritesCompleted,
				len(res.Violations), len(res.Inversions), res.MinActive,
				res.JoinLatency.Quantile(0.5), res.JoinLatency.Quantile(0.99))
		}
	}
	return nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
