package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestScanEmitsCSV(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-protocol", "sync", "-n", "10", "-duration", "200",
		"-steps", "2", "-seeds", "1", "-max-mult", "0.5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 churn values × 1 seed
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "protocol,c,") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	for _, ln := range lines[1:] {
		if !strings.HasPrefix(ln, "sync,") {
			t.Fatalf("row wrong: %q", ln)
		}
		if got := strings.Count(ln, ","); got != 12 {
			t.Fatalf("row has %d commas, want 12: %q", got, ln)
		}
	}
}

func TestScanESync(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-protocol", "esync", "-n", "8", "-duration", "200",
		"-steps", "1", "-seeds", "1", "-max-mult", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "esync,") {
		t.Fatalf("no esync rows:\n%s", buf.String())
	}
}

func TestScanUnknownProtocol(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-protocol", "nope"}, &buf); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}
