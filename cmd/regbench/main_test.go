package main

import (
	"io"
	"strings"
	"testing"
)

func TestParseFlagsValidates(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error ("" = ok)
	}{
		{"wire needs seeds", []string{"-mode", "wire"}, "-seeds"},
		{"http needs api", []string{"-mode", "http"}, "-api"},
		{"unknown mode", []string{"-mode", "udp", "-seeds", "a:1"}, "unknown -mode"},
		{"bad rate", []string{"-seeds", "a:1", "-rate", "0"}, "must be > 0"},
		{"bad write frac", []string{"-seeds", "a:1", "-write-frac", "1.5"}, "-write-frac"},
		{"ok wire", []string{"-seeds", "a:1,b:2"}, ""},
		{"ok http", []string{"-mode", "http", "-api", "a:1"}, ""},
		{"compare needs no addresses", []string{"-compare"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := parseFlags(tc.args, io.Discard)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("parsed %v into %+v, want error containing %q", tc.args, cfg, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParseFlagsSeedsList(t *testing.T) {
	cfg, err := parseFlags([]string{"-seeds", "a:1, b:2 ,,c:3"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.seeds) != 3 || cfg.seeds[0] != "a:1" || cfg.seeds[1] != "b:2" || cfg.seeds[2] != "c:3" {
		t.Fatalf("seeds = %q", cfg.seeds)
	}
}
