// Command regbench is the open-loop load generator for a churnreg
// cluster. Open-loop means arrivals come at a FIXED rate — arrival i is
// due at start + i/rate whether or not earlier operations finished — and
// every operation's latency is measured from its scheduled arrival. A
// closed-loop generator (fixed worker pool, next op after the last
// returns) silently slows its arrivals whenever the server stalls, so
// the stall never shows in the numbers: the coordinated-omission trap.
// regbench keeps the arrival process honest, which is what makes its
// p99 mean something.
//
// Drive an existing cluster through the wire-native smart client:
//
//	regbench -mode wire -seeds 127.0.0.1:7001,127.0.0.1:7002 -rate 2000 -ops 10000 -write-frac 0.1
//
// or through one node's HTTP API (the naive path — every op enters at
// that node and pays a FORWARD relay when the node does not own the key):
//
//	regbench -mode http -api 127.0.0.1:8001 -rate 2000 -ops 10000
//
// Both print an open-loop latency report (JSON) to stdout.
//
// The comparison mode spawns its own sharded regserve cluster, runs the
// naive HTTP path and the smart wire path against it (closed-loop
// throughput legs bracketed by regserve_forward_total scrapes, then the
// open-loop latency mixes), and writes the BENCH_client.json artifact:
//
//	regbench -compare -out .
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"churnreg/client"
	"churnreg/internal/benchclient"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "regbench:", err)
		os.Exit(1)
	}
}

// benchConfig is the parsed command line.
type benchConfig struct {
	mode      string
	seeds     []string
	api       string
	rate      float64
	ops       int
	keys      int
	writeFrac float64
	seed      int64
	compare   bool
	out       string

	nodes       int
	shards      int
	replication int
	inflight    int
	duration    time.Duration
}

func parseFlags(args []string, errW io.Writer) (*benchConfig, error) {
	fs := flag.NewFlagSet("regbench", flag.ContinueOnError)
	fs.SetOutput(errW)
	var (
		mode      = fs.String("mode", "wire", "op path: wire (smart client, direct-to-shard) or http (one node's HTTP API)")
		seeds     = fs.String("seeds", "", "comma-separated wire addresses of cluster nodes (mode wire)")
		api       = fs.String("api", "", "HTTP API address of the entry node (mode http)")
		rate      = fs.Float64("rate", 1000, "open-loop arrival rate (ops/sec)")
		ops       = fs.Int("ops", 5000, "scheduled arrivals")
		keys      = fs.Int("keys", 64, "keyspace the workload spreads over")
		writeFrac = fs.Float64("write-frac", 0.1, "fraction of arrivals that are writes")
		seed      = fs.Int64("seed", 1, "workload seed")
		compare   = fs.Bool("compare", false, "spawn a sharded regserve cluster and produce BENCH_client.json (naive HTTP vs smart wire, plus open-loop mixes)")
		out       = fs.String("out", ".", "directory for BENCH_client.json (with -compare)")

		nodes       = fs.Int("nodes", 5, "cluster size (with -compare)")
		shards      = fs.Int("shards", 8, "shard count (with -compare)")
		replication = fs.Int("replication", 3, "replica group size (with -compare)")
		inflight    = fs.Int("inflight", 64, "closed-loop workers per throughput leg (with -compare)")
		duration    = fs.Duration("duration", 3*time.Second, "closed-loop leg duration (with -compare)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	cfg := &benchConfig{
		mode: *mode, api: *api, rate: *rate, ops: *ops, keys: *keys,
		writeFrac: *writeFrac, seed: *seed, compare: *compare, out: *out,
		nodes: *nodes, shards: *shards, replication: *replication,
		inflight: *inflight, duration: *duration,
	}
	for _, s := range strings.Split(*seeds, ",") {
		if s = strings.TrimSpace(s); s != "" {
			cfg.seeds = append(cfg.seeds, s)
		}
	}
	if cfg.rate <= 0 || cfg.ops <= 0 || cfg.keys <= 0 {
		return nil, fmt.Errorf("-rate, -ops, and -keys must be > 0")
	}
	if cfg.writeFrac < 0 || cfg.writeFrac > 1 {
		return nil, fmt.Errorf("-write-frac must be in [0,1] (got %g)", cfg.writeFrac)
	}
	if !cfg.compare {
		switch cfg.mode {
		case "wire":
			if len(cfg.seeds) == 0 {
				return nil, fmt.Errorf("-mode wire needs -seeds (wire addresses of cluster nodes)")
			}
		case "http":
			if cfg.api == "" {
				return nil, fmt.Errorf("-mode http needs -api (the entry node's HTTP address)")
			}
		default:
			return nil, fmt.Errorf("unknown -mode %q (want wire or http)", cfg.mode)
		}
	}
	return cfg, nil
}

func run(args []string, out, errW io.Writer) error {
	cfg, err := parseFlags(args, errW)
	if err != nil {
		return err
	}
	if cfg.compare {
		return runCompare(cfg, out)
	}
	return runOpenLoop(cfg, out)
}

// runOpenLoop fires the open-loop workload at an existing cluster and
// prints the latency report.
func runOpenLoop(cfg *benchConfig, out io.Writer) error {
	var do benchclient.OpFunc
	switch cfg.mode {
	case "wire":
		c, err := client.Dial(client.Config{Seeds: cfg.seeds})
		if err != nil {
			return fmt.Errorf("dialing %v: %w", cfg.seeds, err)
		}
		defer c.Close()
		do = func(key int64, write bool) error {
			if write {
				_, err := c.Write(key, key)
				return err
			}
			_, err := c.Read(key)
			return err
		}
	case "http":
		do = httpOp(cfg.api)
	}
	res, err := benchclient.RunOpenLoop(benchclient.OpenLoopConfig{
		Rate: cfg.rate, Ops: cfg.ops, Keys: cfg.keys,
		WriteFraction: cfg.writeFrac, Seed: cfg.seed, Do: do,
	})
	if err != nil {
		return err
	}
	res.Mix = benchclient.Mix{Name: cfg.mode, WriteFraction: cfg.writeFrac}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// httpOp is the naive per-op HTTP path (mode http).
func httpOp(api string) benchclient.OpFunc {
	// benchclient's comparison legs use the same construction; regbench
	// only needs the one-node entry variant.
	return benchclient.HTTPOpFunc(api)
}

// runCompare produces the full naive-vs-smart artifact.
func runCompare(cfg *benchConfig, out io.Writer) error {
	rep, err := benchclient.Run(benchclient.Config{
		Nodes: cfg.nodes, Shards: cfg.shards, Replication: cfg.replication,
		Keys: cfg.keys, Inflight: cfg.inflight, Duration: cfg.duration,
		Rate: cfg.rate, OpenOps: cfg.ops,
	})
	if err != nil {
		return err
	}
	path := filepath.Join(cfg.out, "BENCH_client.json")
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	fmt.Fprintf(out, "client %-11s: %8.1f ops/sec (%d ops, %d forward relays)\n",
		rep.HTTPNaive.Mode, rep.HTTPNaive.OpsPerSec, rep.HTTPNaive.Ops, rep.HTTPNaive.ForwardRelays)
	fmt.Fprintf(out, "client %-11s: %8.1f ops/sec (%d ops, %d forward relays) — %.1fx\n",
		rep.WireDirect.Mode, rep.WireDirect.OpsPerSec, rep.WireDirect.Ops, rep.WireDirect.ForwardRelays, rep.DirectSpeedup)
	for _, ol := range rep.OpenLoop {
		fmt.Fprintf(out, "client open-loop %s (%.0f%% writes) @ %.0f/s: read p50/p95/p99 %.1f/%.1f/%.1f ms, write %.1f/%.1f/%.1f ms\n",
			ol.Mix.Name, ol.Mix.WriteFraction*100, ol.RateOpsPerSec,
			ol.ReadP50Ms, ol.ReadP95Ms, ol.ReadP99Ms,
			ol.WriteP50Ms, ol.WriteP95Ms, ol.WriteP99Ms)
	}
	return nil
}
