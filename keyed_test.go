package churnreg

// Acceptance coverage for the keyed register namespace: ReadKey/WriteKey
// over >= 64 concurrent keys under churn on both runtimes, with exactly
// one join (one INQUIRY broadcast) per process no matter how many keys it
// serves, and per-key regularity holding throughout. White-box (package
// churnreg) so the tests can reach protocol node stats through the
// cluster internals.

import (
	"testing"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/esyncreg"
	"churnreg/internal/syncreg"
)

const keyedTestKeys = 64

// assertOneJoinPerProcess walks the simulated cluster's active nodes and
// verifies the one-join-one-inquiry invariant: bootstrap processes never
// inquired, every later process inquired exactly once — regardless of how
// many registers it has served since.
func assertOneJoinPerProcess(t *testing.T, c *SimCluster, bootstrapN int) {
	t.Helper()
	joiners := 0
	for _, id := range c.sys.ActiveIDs() {
		var inquiries uint64
		switch n := c.sys.Node(id).(type) {
		case *syncreg.Node:
			inquiries = n.Stats().JoinInquiries
		case *esyncreg.Node:
			inquiries = n.Stats().JoinInquiries
		default:
			t.Fatalf("unexpected node type %T", n)
		}
		bootstrap := int64(id) <= int64(bootstrapN) // IDs allocate sequentially from 1
		switch {
		case bootstrap && inquiries != 0:
			t.Fatalf("bootstrap %v sent %d join inquiries, want 0", id, inquiries)
		case !bootstrap && inquiries != 1:
			t.Fatalf("joiner %v sent %d join inquiries, want exactly 1", id, inquiries)
		}
		if !bootstrap {
			joiners++
		}
	}
	if joiners == 0 {
		t.Fatal("churn produced no surviving joiner; invariant not exercised")
	}
}

// runKeyedChurnWorkload drives writes and reads over the whole namespace,
// interleaved with simulation time so churn keeps replacing processes.
func runKeyedChurnWorkload(t *testing.T, c *SimCluster, rounds int) {
	t.Helper()
	val := int64(0)
	for round := 0; round < rounds; round++ {
		for k := 0; k < keyedTestKeys; k++ {
			val++
			if err := c.WriteKey(RegisterID(k), val); err != nil {
				t.Fatalf("round %d write key %d: %v", round, k, err)
			}
		}
		c.Run(40)
		for k := 0; k < keyedTestKeys; k++ {
			if _, err := c.ReadKey(RegisterID(k)); err != nil {
				t.Fatalf("round %d read key %d: %v", round, k, err)
			}
		}
	}
}

func TestSimKeyedNamespaceUnderChurnSynchronous(t *testing.T) {
	c, err := NewSimCluster(
		WithN(20),
		WithDelta(5),
		WithChurnRate(0.02), // below the sync bound 1/(3δ) ≈ 0.066
		WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	runKeyedChurnWorkload(t, c, 3)

	// A fresh joiner learns the ENTIRE namespace from its single join:
	// every key's read at the newcomer returns the last written value.
	id, err := c.Join()
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keyedTestKeys; k++ {
		want := int64(2*keyedTestKeys + k + 1) // last round's value for key k
		got, err := c.ReadKeyAt(id, RegisterID(k))
		if err != nil {
			t.Fatalf("joiner read key %d: %v", k, err)
		}
		if got != want {
			t.Fatalf("joiner read key %d = %d, want %d", k, got, want)
		}
	}

	rep := c.Check()
	if !rep.OK() {
		t.Fatalf("per-key regularity violated:\n%s", rep)
	}
	if rep.Writes < 3*keyedTestKeys || rep.Reads < 3*keyedTestKeys {
		t.Fatalf("workload too thin: %d writes, %d reads", rep.Writes, rep.Reads)
	}
	assertOneJoinPerProcess(t, c, 20)
}

func TestSimKeyedNamespaceUnderChurnEventuallySynchronous(t *testing.T) {
	c, err := NewSimCluster(
		WithN(10),
		WithDelta(5),
		WithProtocol(EventuallySynchronous),
		WithChurnRate(0.005), // near the esync bound 1/(3δn) with joiners protected young
		WithMinLifetime(60),
		WithSeed(11),
	)
	if err != nil {
		t.Fatal(err)
	}
	runKeyedChurnWorkload(t, c, 2)

	id, err := c.Join()
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keyedTestKeys; k++ {
		want := int64(keyedTestKeys + k + 1)
		got, err := c.ReadKeyAt(id, RegisterID(k))
		if err != nil {
			t.Fatalf("joiner read key %d: %v", k, err)
		}
		if got != want {
			t.Fatalf("joiner read key %d = %d, want %d", k, got, want)
		}
	}

	rep := c.Check()
	if !rep.OK() {
		t.Fatalf("per-key regularity violated:\n%s", rep)
	}
	assertOneJoinPerProcess(t, c, 10)
}

func TestSimWriteBatchOneBroadcastManyKeys(t *testing.T) {
	c, err := NewSimCluster(WithN(10), WithDelta(5), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	batch := make(map[RegisterID]int64, keyedTestKeys)
	for k := 0; k < keyedTestKeys; k++ {
		batch[RegisterID(k)] = int64(1000 + k)
	}
	broadcastsBefore := c.sys.Network().Stats().Broadcasts
	if err := c.WriteBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := c.sys.Network().Stats().Broadcasts - broadcastsBefore; got != 1 {
		t.Fatalf("batch of %d keys used %d broadcasts, want 1", keyedTestKeys, got)
	}
	for k := 0; k < keyedTestKeys; k++ {
		v, err := c.ReadKey(RegisterID(k))
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(1000+k) {
			t.Fatalf("key %d = %d after batch, want %d", k, v, 1000+k)
		}
	}
	if rep := c.Check(); !rep.OK() {
		t.Fatalf("batch write broke regularity:\n%s", rep)
	}
}

func TestLiveKeyedNamespaceUnderChurn(t *testing.T) {
	c, err := NewLiveCluster(
		WithN(7),
		WithDelta(10),
		WithTick(time.Millisecond),
		WithProtocol(EventuallySynchronous),
		WithOperationTimeout(20*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Populate all 64 keys, churning one process per 16 keys: each
	// departure+join forces a newcomer to recover the namespace state
	// through its single join.
	for k := 0; k < keyedTestKeys; k++ {
		if err := c.WriteKey(RegisterID(k), int64(100+k)); err != nil {
			t.Fatalf("write key %d: %v", k, err)
		}
		if k%16 == 15 {
			ids := c.IDs()
			victim := ids[0]
			if victim == c.WriterID() {
				victim = ids[1]
			}
			if err := c.Leave(victim); err != nil {
				t.Fatalf("leave: %v", err)
			}
			if _, err := c.Join(); err != nil {
				t.Fatalf("join: %v", err)
			}
		}
	}

	// A fresh joiner serves every key after one join, and its node
	// broadcast exactly one INQUIRY for the whole namespace.
	id, err := c.Join()
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keyedTestKeys; k++ {
		v, err := c.ReadKeyAt(id, RegisterID(k))
		if err != nil {
			t.Fatalf("joiner read key %d: %v", k, err)
		}
		if v != int64(100+k) {
			t.Fatalf("joiner key %d = %d, want %d", k, v, 100+k)
		}
	}
	inquiries := make(chan uint64, 1)
	if err := c.cluster.Invoke(id, func(n core.Node) {
		inquiries <- n.(*esyncreg.Node).Stats().JoinInquiries
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-inquiries:
		if got != 1 {
			t.Fatalf("live joiner sent %d join inquiries for %d keys, want exactly 1", got, keyedTestKeys)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timed out reading joiner stats")
	}
}
